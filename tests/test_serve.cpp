#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "io/checkpoint.hpp"
#include "nqs/ansatz.hpp"
#include "serve/amplitude_server.hpp"

using namespace nnqs;
using namespace nnqs::serve;

namespace {

nqs::QiankunNetConfig smallConfig(std::uint64_t seed = 11) {
  nqs::QiankunNetConfig cfg;
  cfg.nQubits = 8;
  cfg.nAlpha = 2;
  cfg.nBeta = 2;
  cfg.dModel = 16;
  cfg.nHeads = 4;
  cfg.nDecoders = 2;
  cfg.phaseHidden = 32;
  cfg.phaseHiddenLayers = 2;
  cfg.seed = seed;
  return cfg;
}

std::vector<Bits128> numberSector(int n, int na, int nb) {
  std::vector<Bits128> out;
  for (std::uint64_t v = 0; v < (1ull << n); ++v) {
    Bits128 b{v, 0};
    int up = 0, down = 0;
    for (int q = 0; q < n; q += 2) up += b.get(q);
    for (int q = 1; q < n; q += 2) down += b.get(q);
    if (up == na && down == nb) out.push_back(b);
  }
  return out;
}

/// Serialize a small net into an in-memory checkpoint image.
io::CheckpointReader makeCheckpoint(std::uint64_t seed = 11) {
  nqs::QiankunNet net(smallConfig(seed));
  io::CheckpointWriter w;
  io::addNet(w, net);
  return io::CheckpointReader(w.serialize());
}

/// Direct (unserved) reference amplitudes of every sector configuration.
void referenceValues(const io::CheckpointReader& ckpt,
                     const std::vector<Bits128>& sector,
                     std::vector<Real>& logAmp, std::vector<Real>& phase) {
  auto net = io::makeNet(ckpt);
  net->prepareConcurrent();
  nqs::QiankunNet::EvalSlot slot;
  net->evaluateInto(slot, sector, logAmp, phase);
}

}  // namespace

TEST(Serve, ServedBitsMatchDirectEvaluateUnderConcurrency) {
  const auto ckpt = makeCheckpoint(23);
  const auto sector = numberSector(8, 2, 2);
  std::vector<Real> refLa, refPh;
  referenceValues(ckpt, sector, refLa, refPh);

  ServeOptions opts;
  opts.nWorkers = 3;
  opts.maxBatch = 48;  // forces coalescing across clients and splits
  opts.maxDelayUs = 200;
  AmplitudeServer server(ckpt, opts);

  // >= 8 concurrent clients, each querying random slices with its own stream:
  // every served value must match the direct evaluate bit for bit, no matter
  // how the batcher interleaves the slices.
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 40;
  std::atomic<int> mismatches{0};
  std::atomic<int> nonOk{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(1000 + static_cast<std::uint64_t>(c));
      std::vector<Bits128> q;
      std::vector<Real> la, ph;
      std::vector<std::size_t> idx;
      for (int it = 0; it < kQueriesPerClient; ++it) {
        const std::size_t n = 1 + rng() % 20;
        q.clear();
        idx.clear();
        for (std::size_t i = 0; i < n; ++i) {
          idx.push_back(rng() % sector.size());
          q.push_back(sector[idx.back()]);
        }
        QueryStatus s = server.query(q, la, ph);
        while (s == QueryStatus::kRejected) s = server.query(q, la, ph);
        if (s != QueryStatus::kOk) {
          ++nonOk;
          continue;
        }
        for (std::size_t i = 0; i < n; ++i)
          if (la[i] != refLa[idx[i]] || ph[i] != refPh[idx[i]]) ++mismatches;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(nonOk.load(), 0);

  const ServeStats st = server.stats();
  EXPECT_EQ(st.served, st.enqueued);
  EXPECT_GT(st.batches, 0u);
  server.shutdown();
}

TEST(Serve, BackpressureRejectsInsteadOfBlocking) {
  const auto ckpt = makeCheckpoint(29);
  const auto sector = numberSector(8, 2, 2);

  ServeOptions opts;
  opts.nWorkers = 1;
  opts.maxBatch = 4;
  opts.queueCapacityRequests = 4;
  opts.queueCapacityRows = 16;
  AmplitudeServer server(ckpt, opts);
  server.pause();  // workers idle: the queue can only fill

  std::vector<Real> la(4), ph(4);
  std::vector<AmplitudeServer::Ticket> tickets(4);
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(server.submit(sector.data(), 4, la.data(), ph.data(), tickets[i]),
              QueryStatus::kOk);
  // The 5th request finds the ring full: an immediate, non-blocking reject.
  AmplitudeServer::Ticket overflow;
  EXPECT_EQ(server.submit(sector.data(), 4, la.data(), ph.data(), overflow),
            QueryStatus::kRejected);
  // Requests above maxBatch rows can never be served and say so.
  std::vector<Real> big(8);
  AmplitudeServer::Ticket tooLarge;
  EXPECT_EQ(server.submit(sector.data(), 8, big.data(), big.data(), tooLarge),
            QueryStatus::kTooLarge);

  server.resume();
  for (auto& t : tickets) EXPECT_EQ(server.wait(t), QueryStatus::kOk);
  const ServeStats st = server.stats();
  EXPECT_EQ(st.enqueued, 4u);
  EXPECT_EQ(st.served, 4u);
  EXPECT_GE(st.rejected, 1u);
  EXPECT_GE(st.rejectedTooLarge, 1u);
  server.shutdown();
}

TEST(Serve, DeadlineFlushesUnderfullBatches) {
  const auto ckpt = makeCheckpoint(31);
  const auto sector = numberSector(8, 2, 2);

  ServeOptions opts;
  opts.nWorkers = 1;
  opts.maxBatch = 64;  // far larger than any single query below
  opts.maxDelayUs = 300;
  AmplitudeServer server(ckpt, opts);

  std::vector<Real> la(2), ph(2);
  for (int i = 0; i < 6; ++i)
    ASSERT_EQ(server.query(sector.data(), 2, la.data(), ph.data()),
              QueryStatus::kOk);
  const ServeStats st = server.stats();
  // A blocking client can't co-batch with itself: every flush fires on the
  // deadline, with occupancy far below a full batch.
  EXPECT_EQ(st.served, 6u);
  EXPECT_GT(st.deadlineFlushes, 0u);
  EXPECT_EQ(st.fullFlushes, 0u);
  EXPECT_GT(st.occupancy[0], 0u);  // 2 of 64 rows: the lowest bucket
  EXPECT_GT(st.latencyPercentileUs(50), 0.0);
  server.shutdown();
}

TEST(Serve, ShutdownDrainsInFlightRequests) {
  const auto ckpt = makeCheckpoint(37);
  const auto sector = numberSector(8, 2, 2);

  ServeOptions opts;
  opts.nWorkers = 2;
  opts.maxBatch = 8;
  opts.queueCapacityRequests = 64;
  opts.queueCapacityRows = 512;
  AmplitudeServer server(ckpt, opts);
  server.pause();  // queue everything first, then shut down mid-flight

  constexpr int kRequests = 10;
  std::vector<std::vector<Real>> la(kRequests), ph(kRequests);
  std::vector<AmplitudeServer::Ticket> tickets(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    la[static_cast<std::size_t>(i)].resize(3);
    ph[static_cast<std::size_t>(i)].resize(3);
    ASSERT_EQ(server.submit(sector.data() + i, 3,
                            la[static_cast<std::size_t>(i)].data(),
                            ph[static_cast<std::size_t>(i)].data(), tickets[i]),
              QueryStatus::kOk);
  }
  // shutdown() overrides the pause, serves all 10 queued requests, and joins.
  server.shutdown();
  for (auto& t : tickets) EXPECT_EQ(server.wait(t), QueryStatus::kOk);
  const ServeStats st = server.stats();
  EXPECT_EQ(st.served, static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(st.drainFlushes, 0u);

  // Post-shutdown submissions are refused, not queued forever.
  std::vector<Real> la1(1), ph1(1);
  EXPECT_EQ(server.query(sector.data(), 1, la1.data(), ph1.data()),
            QueryStatus::kShutdown);

  // Drained values are still bit-correct.
  std::vector<Real> refLa, refPh;
  referenceValues(ckpt, sector, refLa, refPh);
  for (int i = 0; i < kRequests; ++i)
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(la[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
                refLa[static_cast<std::size_t>(i + k)]);
      EXPECT_EQ(ph[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
                refPh[static_cast<std::size_t>(i + k)]);
    }
}

TEST(Serve, StatsAreDeterministicOnAFixedSchedule) {
  const auto ckpt = makeCheckpoint(41);
  const auto sector = numberSector(8, 2, 2);

  ServeOptions opts;
  opts.nWorkers = 1;
  opts.maxBatch = 16;
  opts.maxDelayUs = 0;  // flush as soon as a worker wakes
  opts.queueCapacityRequests = 32;
  AmplitudeServer server(ckpt, opts);

  // Fixed schedule: queue 4 x 4-row requests while paused, then release.  The
  // single worker must see exactly one saturated 16-row batch.
  server.pause();
  std::vector<std::vector<Real>> la(4), ph(4);
  std::vector<AmplitudeServer::Ticket> tickets(4);
  for (int i = 0; i < 4; ++i) {
    la[static_cast<std::size_t>(i)].resize(4);
    ph[static_cast<std::size_t>(i)].resize(4);
    ASSERT_EQ(server.submit(sector.data() + i, 4,
                            la[static_cast<std::size_t>(i)].data(),
                            ph[static_cast<std::size_t>(i)].data(), tickets[i]),
              QueryStatus::kOk);
  }
  server.resume();
  for (auto& t : tickets) ASSERT_EQ(server.wait(t), QueryStatus::kOk);

  const ServeStats st = server.stats();
  EXPECT_EQ(st.enqueued, 4u);
  EXPECT_EQ(st.served, 4u);
  EXPECT_EQ(st.rowsServed, 16u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.fullFlushes, 1u);
  EXPECT_EQ(st.occupancy[ServeStats::kOccupancyBuckets - 1], 1u);
  server.shutdown();
  // Idempotent shutdown and a second stats read are safe.
  server.shutdown();
  EXPECT_EQ(server.stats().served, 4u);
}

TEST(Serve, EmptyQueryAndDestructorShutdown) {
  const auto ckpt = makeCheckpoint(43);
  {
    AmplitudeServer server(ckpt, ServeOptions{});
    EXPECT_EQ(server.query(nullptr, 0, nullptr, nullptr), QueryStatus::kOk);
    // Leaving scope with live workers must join cleanly (no deadlock, no
    // leaked threads) — the destructor runs shutdown().
  }
  // Invalid options are rejected up front.
  ServeOptions bad;
  bad.nWorkers = 0;
  EXPECT_THROW(AmplitudeServer(ckpt, bad), std::invalid_argument);
}

#include <gtest/gtest.h>

#include "chem/basis_set.hpp"
#include "chem/geometry_library.hpp"
#include "common/rng.hpp"
#include "ops/jordan_wigner.hpp"
#include "ops/packed_hamiltonian.hpp"
#include "scf/rhf.hpp"

using namespace nnqs;
using namespace nnqs::ops;

namespace {
SpinHamiltonian hamiltonianFor(const char* name) {
  const auto mol = chem::makeMolecule(name);
  const auto basis = chem::buildBasis(mol, "sto-3g");
  const auto ao = scf::computeAoIntegrals(mol, basis);
  const auto hf = scf::runHartreeFock(ao, mol);
  return jordanWigner(scf::transformToMo(ao, hf));
}
}  // namespace

class PackedHamTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PackedHamTest, BothLayoutsReproduceMatrixElements) {
  const SpinHamiltonian h = hamiltonianFor(GetParam());
  const auto made = MadePackedHamiltonian::fromHamiltonian(h);
  const auto packed = PackedHamiltonian::fromHamiltonian(h);
  EXPECT_EQ(made.nTerms(), h.nTerms());
  EXPECT_EQ(packed.nTerms(), h.nTerms());
  EXPECT_LE(packed.nGroups(), packed.nTerms());

  Rng rng(99);
  const int n = h.nQubits;
  for (int trial = 0; trial < 200; ++trial) {
    Bits128 x{rng.next() & ((n >= 64) ? ~0ull : ((1ull << n) - 1)), 0};
    // Coupled state via a random string's XY mask (guarantees some hits).
    const std::size_t k = rng.below(h.nTerms());
    const Bits128 xp = x ^ h.strings[k].x;
    const Real ref = h.matrixElement(x, xp);
    EXPECT_NEAR(made.matrixElement(x, xp), ref, 1e-10);
    EXPECT_NEAR(packed.matrixElement(x, xp), ref, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Molecules, PackedHamTest,
                         ::testing::Values("H2", "LiH", "BeH2", "H2O"));

TEST(PackedHamiltonian, GroupsPartitionTheStrings) {
  const SpinHamiltonian h = hamiltonianFor("H2O");
  const auto packed = PackedHamiltonian::fromHamiltonian(h);
  ASSERT_EQ(packed.idxs.size(), packed.nGroups() + 1);
  EXPECT_EQ(packed.idxs.front(), 0u);
  EXPECT_EQ(packed.idxs.back(), packed.nTerms());
  for (std::size_t k = 0; k + 1 < packed.idxs.size(); ++k)
    EXPECT_LT(packed.idxs[k], packed.idxs[k + 1]);
  // Unique masks are strictly ordered (deterministic layout).
  for (std::size_t k = 1; k < packed.nGroups(); ++k)
    EXPECT_LT(packed.xyUnique[k - 1], packed.xyUnique[k]);
}

TEST(PackedHamiltonian, MemoryReductionAround40Percent) {
  // Fig. 9's claim: the compressed layout saves ~40% vs the MADE layout.
  const SpinHamiltonian h = hamiltonianFor("H2O");
  const auto made = MadePackedHamiltonian::fromHamiltonian(h);
  const auto packed = PackedHamiltonian::fromHamiltonian(h);
  const double reduction =
      1.0 - static_cast<double>(packed.memoryBytes()) /
                static_cast<double>(made.memoryBytes());
  EXPECT_GT(reduction, 0.15);
  EXPECT_LT(reduction, 0.70);
}

TEST(PackedHamiltonian, DiagonalGroupGivesDiagonalElement) {
  const SpinHamiltonian h = hamiltonianFor("LiH");
  const auto packed = PackedHamiltonian::fromHamiltonian(h);
  // Group with zero XY mask exists (all-Z strings) and reproduces <x|H|x>.
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    Bits128 x{rng.next() & ((1ull << h.nQubits) - 1), 0};
    EXPECT_NEAR(packed.matrixElement(x, x), h.matrixElement(x, x), 1e-10);
  }
}

TEST(PackedHamiltonian, BatchedGroupCoefficientsMatchScalar) {
  // groupCoefficients transposes the (string, sample) loop but keeps each
  // sample's additions in ascending-string order: bit-identical to the
  // scalar groupCoefficient.
  const SpinHamiltonian h = hamiltonianFor("LiH");
  const auto packed = PackedHamiltonian::fromHamiltonian(h);
  Rng rng(17);
  const std::size_t n = 37;  // odd size exercises the SIMD tail
  std::vector<Bits128> xs(n);
  for (auto& x : xs) x = Bits128{rng.next() & ((1ull << h.nQubits) - 1), 0};
  std::vector<Real> batched(n);
  std::vector<unsigned char> scratch(n);
  for (std::size_t k = 0; k < packed.nGroups(); ++k) {
    packed.groupCoefficients(k, xs.data(), n, batched.data(), scratch.data());
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_EQ(batched[j], packed.groupCoefficient(k, xs[j]))
          << "k=" << k << " j=" << j;
  }
}

TEST(PackedHamiltonian, PremultipliedCoefficientSigns) {
  // For strings with #Y % 4 == 2 the stored coefficient flips sign.
  SpinHamiltonian h;
  h.nQubits = 4;
  h.strings.push_back(PauliString::fromString("YYII"));  // 2 Ys
  h.coeffs.push_back(0.25);
  h.strings.push_back(PauliString::fromString("YYYY"));  // 4 Ys
  h.coeffs.push_back(0.5);
  const auto packed = PackedHamiltonian::fromHamiltonian(h);
  // Find which group got which: both have distinct XY masks.
  for (std::size_t k = 0; k < packed.nGroups(); ++k) {
    const std::size_t i = packed.idxs[k];
    if (packed.xyUnique[k] == PauliString::fromString("YYII").x)
      EXPECT_NEAR(packed.coeffs[i], -0.25, 1e-15);
    else
      EXPECT_NEAR(packed.coeffs[i], 0.5, 1e-15);
  }
}

#include <gtest/gtest.h>

#include "ops/pauli.hpp"

using namespace nnqs;
using namespace nnqs::ops;

namespace {
PauliString ps(const std::string& s) { return PauliString::fromString(s); }
}  // namespace

TEST(Pauli, StringRoundTrip) {
  for (const char* s : {"IXYZ", "XXXX", "ZIZI", "YYII"})
    EXPECT_EQ(ps(s).toString(4), s);
}

TEST(Pauli, YCountAndWeight) {
  EXPECT_EQ(ps("IXYZ").yCount(), 1);
  EXPECT_EQ(ps("IXYZ").weight(), 3);
  EXPECT_EQ(ps("YYYY").yCount(), 4);
}

TEST(Pauli, SingleQubitAlgebra) {
  // XY = iZ, YX = -iZ, ZX = iY, XZ = -iY, YZ = iX, ZY = -iX, XX = I.
  struct Case {
    const char *a, *b, *prod;
    Complex phase;
  };
  const Case cases[] = {
      {"X", "Y", "Z", {0, 1}},  {"Y", "X", "Z", {0, -1}},
      {"Z", "X", "Y", {0, 1}},  {"X", "Z", "Y", {0, -1}},
      {"Y", "Z", "X", {0, 1}},  {"Z", "Y", "X", {0, -1}},
      {"X", "X", "I", {1, 0}},  {"Y", "Y", "I", {1, 0}},
      {"Z", "Z", "I", {1, 0}},
  };
  for (const auto& c : cases) {
    const PauliTerm t = multiply(ps(c.a), ps(c.b));
    EXPECT_EQ(t.string, ps(c.prod)) << c.a << "*" << c.b;
    EXPECT_NEAR(std::abs(t.coeff - c.phase), 0.0, 1e-15) << c.a << "*" << c.b;
  }
}

TEST(Pauli, MultiQubitProductPhases) {
  // (X0 Y1)(Y0 Y1) = (XY)(YY) = (iZ)(I) = i Z0.
  const PauliTerm t = multiply(ps("XY"), ps("YY"));
  EXPECT_EQ(t.string, ps("ZI"));
  EXPECT_NEAR(std::abs(t.coeff - Complex{0, 1}), 0.0, 1e-15);
}

TEST(Pauli, ApplyPhaseMatchesDefinition) {
  // Z|1> = -|1>, Z|0> = |0>.
  Bits128 one = fromBitString("1"), zero;
  EXPECT_EQ(applyPhase(ps("Z"), one), (Complex{-1, 0}));
  EXPECT_EQ(applyPhase(ps("Z"), zero), (Complex{1, 0}));
  // Y|0> = i|1>: phase i.
  EXPECT_EQ(applyPhase(ps("Y"), zero), (Complex{0, 1}));
  // Y|1> = -i|0>.
  EXPECT_EQ(applyPhase(ps("Y"), one), (Complex{0, -1}));
}

TEST(Pauli, MatrixElementSelectsCoupledState) {
  const PauliString p = ps("XZ");
  const Bits128 ket = fromBitString("10");  // qubit1=1, qubit0=0
  // X0 flips qubit 0: bra must be "11".
  EXPECT_NE(matrixElement(p, fromBitString("11"), ket), (Complex{0, 0}));
  EXPECT_EQ(matrixElement(p, fromBitString("00"), ket), (Complex{0, 0}));
  // Z on qubit 1 (set) gives -1.
  EXPECT_EQ(matrixElement(p, fromBitString("11"), ket), (Complex{-1, 0}));
}

TEST(Pauli, ProductIsAssociative) {
  const PauliString a = ps("XYZI"), b = ps("ZZXY"), c = ps("YIXZ");
  const PauliTerm ab = multiply(a, b);
  const PauliTerm bc = multiply(b, c);
  const PauliTerm left = multiply(ab.string, c);
  const PauliTerm right = multiply(a, bc.string);
  EXPECT_EQ(left.string, right.string);
  EXPECT_NEAR(std::abs(ab.coeff * left.coeff - bc.coeff * right.coeff), 0.0, 1e-15);
}

TEST(Pauli, HermitianSquareIsIdentity) {
  for (const char* s : {"XYZY", "ZZZZ", "XIXI", "YYXX"}) {
    const PauliTerm t = multiply(ps(s), ps(s));
    EXPECT_TRUE(t.string.x.none() && t.string.z.none());
    EXPECT_NEAR(std::abs(t.coeff - Complex{1, 0}), 0.0, 1e-15);
  }
}

#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis_set.hpp"
#include "chem/element.hpp"
#include "chem/geometry_library.hpp"

using namespace nnqs;
using namespace nnqs::chem;

TEST(Element, RoundTrip) {
  for (int z = 1; z <= 18; ++z) EXPECT_EQ(atomicNumber(elementSymbol(z)), z);
  EXPECT_THROW(atomicNumber("Xx"), std::invalid_argument);
}

TEST(Molecule, ElectronCounting) {
  const Molecule h2o = makeMolecule("H2O");
  EXPECT_EQ(h2o.nElectrons(), 10);
  EXPECT_EQ(h2o.nAlpha(), 5);
  EXPECT_EQ(h2o.nBeta(), 5);
  const Molecule o2 = makeMolecule("O2");
  EXPECT_EQ(o2.multiplicity(), 3);
  EXPECT_EQ(o2.nAlpha(), 9);
  EXPECT_EQ(o2.nBeta(), 7);
}

TEST(Molecule, NuclearRepulsionH2) {
  // Two protons at r bohr: E = 1/r.
  const Molecule h2 = makeH2(0.529177210903);  // 1.000000 bohr
  EXPECT_NEAR(h2.nuclearRepulsion(), 1.0, 1e-6);
}

TEST(Molecule, Formula) {
  EXPECT_EQ(makeMolecule("H2O").formula(), "H2O");
  EXPECT_EQ(makeMolecule("C6H6").formula(), "C6H6");
}

struct QubitCount {
  const char* name;
  const char* basis;
  int qubits;  ///< paper's Table 1 / Fig. 9 qubit counts
};

class QubitCountTest : public ::testing::TestWithParam<QubitCount> {};

// The paper's system sizes must be reproduced exactly by our basis data.
TEST_P(QubitCountTest, MatchesPaper) {
  const auto& p = GetParam();
  const Molecule mol = makeMolecule(p.name);
  const BasisSet basis = buildBasis(mol, p.basis);
  EXPECT_EQ(2 * basis.nAO(), p.qubits) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperSystems, QubitCountTest,
    ::testing::Values(QubitCount{"H2O", "sto-3g", 14}, QubitCount{"N2", "sto-3g", 20},
                      QubitCount{"O2", "sto-3g", 20}, QubitCount{"H2S", "sto-3g", 22},
                      QubitCount{"PH3", "sto-3g", 24}, QubitCount{"LiCl", "sto-3g", 28},
                      QubitCount{"Li2O", "sto-3g", 30}, QubitCount{"BeH2", "sto-3g", 14},
                      QubitCount{"C2", "sto-3g", 20}, QubitCount{"LiH", "sto-3g", 12},
                      QubitCount{"NH3", "sto-3g", 16}, QubitCount{"C2H4O", "sto-3g", 38},
                      QubitCount{"C3H6", "sto-3g", 42}, QubitCount{"C6H6", "6-31g", 132},
                      QubitCount{"H2", "cc-pvtz", 56}, QubitCount{"H2", "aug-cc-pvtz", 92}));

TEST(Geometry, BondLengths) {
  const Molecule n2 = makeMolecule("N2");
  const auto& a = n2.atoms();
  Real r = 0;
  for (int d = 0; d < 3; ++d) r += std::pow(a[0].xyz[d] - a[1].xyz[d], 2);
  EXPECT_NEAR(std::sqrt(r) / kBohrPerAngstrom, 1.0977, 1e-6);
}

TEST(Geometry, PyramidalAngle) {
  // NH3: verify the generated H-N-H angle equals the requested 106.67 deg.
  const Molecule nh3 = makeMolecule("NH3");
  const auto& at = nh3.atoms();
  std::array<Real, 3> v1{}, v2{};
  for (int d = 0; d < 3; ++d) {
    v1[d] = at[1].xyz[d] - at[0].xyz[d];
    v2[d] = at[2].xyz[d] - at[0].xyz[d];
  }
  Real dot = 0, n1 = 0, n2 = 0;
  for (int d = 0; d < 3; ++d) {
    dot += v1[d] * v2[d];
    n1 += v1[d] * v1[d];
    n2 += v2[d] * v2[d];
  }
  const Real angle = std::acos(dot / std::sqrt(n1 * n2)) * 180.0 / kPi;
  EXPECT_NEAR(angle, 106.67, 1e-3);
}

TEST(Basis, ShellCounts) {
  // STO-3G O: 1s + 2s + 2p -> 2 s-shells + 1 p-shell = 5 AOs.
  const auto shells = elementShells(8, "sto-3g");
  int nao = 0;
  for (const auto& s : shells) nao += (2 * s.l + 1);
  EXPECT_EQ(nao, 5);
  // cc-pVTZ H: 3s2p1d = 14 spherical AOs.
  const auto h = elementShells(1, "cc-pvtz");
  nao = 0;
  for (const auto& s : h) nao += (2 * s.l + 1);
  EXPECT_EQ(nao, 14);
}

TEST(Basis, LibraryNamesAllBuildable) {
  for (const auto& name : moleculeLibraryNames()) {
    const Molecule mol = makeMolecule(name);
    EXPECT_GT(mol.nElectrons(), 0) << name;
    if (name != "C6H6") {
      const BasisSet b = buildBasis(mol, "sto-3g");
      EXPECT_GT(b.nAO(), 0) << name;
    }
  }
}
